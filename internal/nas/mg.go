package nas

import (
	"fmt"
	"math"

	"ibflow/internal/coll"
	"ibflow/internal/enc"
	"ibflow/internal/mpi"
)

// mgParams holds the multigrid problem scale.
type mgParams struct {
	n      int // fine grid side (power of two)
	cycles int
}

func mgParamsFor(class Class) mgParams {
	switch class {
	case ClassS:
		return mgParams{n: 32, cycles: 2}
	case ClassW:
		return mgParams{n: 128, cycles: 3}
	default: // ClassA (real class A is 256^3)
		return mgParams{n: 256, cycles: 4}
	}
}

// mgLevel is one grid level of the V-cycle, row-partitioned across ranks.
type mgLevel struct {
	n  int       // global side
	rl int       // local rows (without ghosts)
	u  []float64 // solution, (rl+2)*n with ghost rows
	f  []float64 // right-hand side
	r  []float64 // residual scratch
}

// RunMG is the multigrid kernel: V-cycles on a 2-D Poisson problem. Every
// smoothing step exchanges one halo row with each neighbour; the rows
// shrink with each coarsening level (256 -> 128 -> ...), so the coarse
// levels generate floods of very small messages — the reason MG, like LU,
// suffers under the hardware scheme at pre-post 1 in Figure 10.
func RunMG(c *mpi.Comm, class Class) error {
	p := mgParamsFor(class)
	nprocs, me := c.Size(), c.Rank()
	n := p.n
	if n%nprocs != 0 {
		return fmt.Errorf("MG: %d rows not divisible over %d ranks", n, nprocs)
	}

	// Build levels while every rank keeps at least 2 rows.
	var levels []*mgLevel
	for side := n; side%nprocs == 0 && side/nprocs >= 2 && side >= 4; side /= 2 {
		rl := side / nprocs
		levels = append(levels, &mgLevel{
			n:  side,
			rl: rl,
			u:  make([]float64, (rl+2)*side),
			f:  make([]float64, (rl+2)*side),
			r:  make([]float64, (rl+2)*side),
		})
	}
	if len(levels) < 2 {
		return fmt.Errorf("MG: grid %d too small for %d ranks", n, nprocs)
	}

	fine := levels[0]
	rng := newPrand(uint64(5 + 11*me))
	for i := fine.n; i < (fine.rl+1)*fine.n; i++ {
		fine.f[i] = rng.float64n() - 0.5
	}

	up, down := me-1, me+1
	halo := func(l *mgLevel, x []float64) {
		rowBytes := make([]byte, 8*l.n)
		if me%2 == 0 {
			if down < nprocs {
				c.Send(down, 20, enc.F64Bytes(x[l.rl*l.n:(l.rl+1)*l.n]))
				c.Recv(down, 21, rowBytes)
				enc.GetF64(rowBytes, x[(l.rl+1)*l.n:(l.rl+2)*l.n])
			}
			if up >= 0 {
				c.Send(up, 22, enc.F64Bytes(x[l.n:2*l.n]))
				c.Recv(up, 23, rowBytes)
				enc.GetF64(rowBytes, x[0:l.n])
			}
		} else {
			if up >= 0 {
				c.Recv(up, 20, rowBytes)
				enc.GetF64(rowBytes, x[0:l.n])
				c.Send(up, 21, enc.F64Bytes(x[l.n:2*l.n]))
			}
			if down < nprocs {
				c.Recv(down, 22, rowBytes)
				enc.GetF64(rowBytes, x[(l.rl+1)*l.n:(l.rl+2)*l.n])
				c.Send(down, 23, enc.F64Bytes(x[l.rl*l.n:(l.rl+1)*l.n]))
			}
		}
	}

	// Damped Jacobi smoother.
	smooth := func(l *mgLevel, sweeps int) {
		const w = 0.8
		for s := 0; s < sweeps; s++ {
			halo(l, l.u)
			for i := 1; i <= l.rl; i++ {
				gi := me*l.rl + i - 1
				for j := 0; j < l.n; j++ {
					sum := 0.0
					if j > 0 {
						sum += l.u[i*l.n+j-1]
					}
					if j < l.n-1 {
						sum += l.u[i*l.n+j+1]
					}
					if gi > 0 {
						sum += l.u[(i-1)*l.n+j]
					}
					if gi < l.n-1 {
						sum += l.u[(i+1)*l.n+j]
					}
					l.r[i*l.n+j] = (1-w)*l.u[i*l.n+j] + w*(sum+l.f[i*l.n+j])/4
				}
			}
			copy(l.u[l.n:(l.rl+1)*l.n], l.r[l.n:(l.rl+1)*l.n])
			chargeFlops(c, 9*l.rl*l.n)
		}
	}

	residual := func(l *mgLevel) {
		halo(l, l.u)
		for i := 1; i <= l.rl; i++ {
			gi := me*l.rl + i - 1
			for j := 0; j < l.n; j++ {
				sum := 0.0
				if j > 0 {
					sum += l.u[i*l.n+j-1]
				}
				if j < l.n-1 {
					sum += l.u[i*l.n+j+1]
				}
				if gi > 0 {
					sum += l.u[(i-1)*l.n+j]
				}
				if gi < l.n-1 {
					sum += l.u[(i+1)*l.n+j]
				}
				l.r[i*l.n+j] = l.f[i*l.n+j] - (4*l.u[i*l.n+j] - sum)
			}
		}
		chargeFlops(c, 8*l.rl*l.n)
	}

	resNorm := func(l *mgLevel) float64 {
		residual(l)
		s := 0.0
		for i := l.n; i < (l.rl+1)*l.n; i++ {
			s += l.r[i] * l.r[i]
		}
		chargeFlops(c, 2*l.rl*l.n)
		buf := enc.F64Bytes([]float64{s})
		coll.Allreduce(c, buf, coll.SumF64)
		return math.Sqrt(enc.F64s(buf)[0])
	}

	// restrict moves the residual of level l to the RHS of level l+1
	// (injection of even rows/cols; rows stay aligned because rl is even).
	restrict := func(fineL, coarse *mgLevel) {
		residual(fineL)
		for i := 1; i <= coarse.rl; i++ {
			fi := 2*i - 1
			for j := 0; j < coarse.n; j++ {
				coarse.f[i*coarse.n+j] = fineL.r[fi*fineL.n+2*j]
			}
			chargeFlops(c, coarse.n)
		}
		for i := range coarse.u {
			coarse.u[i] = 0
		}
	}

	// prolong adds the coarse correction back into the fine solution.
	prolong := func(coarse, fineL *mgLevel) {
		halo(coarse, coarse.u)
		for i := 1; i <= fineL.rl; i++ {
			ci := (i + 1) / 2
			for j := 0; j < fineL.n; j++ {
				cj := j / 2
				fineL.u[i*fineL.n+j] += coarse.u[ci*coarse.n+cj]
			}
		}
		chargeFlops(c, 2*fineL.rl*fineL.n)
	}

	res0 := resNorm(fine)
	prev := res0
	for cyc := 0; cyc < p.cycles; cyc++ {
		// Down-sweep.
		for l := 0; l < len(levels)-1; l++ {
			smooth(levels[l], 2)
			restrict(levels[l], levels[l+1])
		}
		// Coarse solve: many smoothings on the smallest grid.
		smooth(levels[len(levels)-1], 20)
		// Up-sweep.
		for l := len(levels) - 2; l >= 0; l-- {
			prolong(levels[l+1], levels[l])
			smooth(levels[l], 2)
		}
		got := resNorm(fine)
		if math.IsNaN(got) || got > prev {
			return fmt.Errorf("MG: residual grew in cycle %d: %g -> %g", cyc, prev, got)
		}
		prev = got
	}
	if prev > 0.5*res0 {
		return fmt.Errorf("MG: V-cycles barely converged: %g -> %g", res0, prev)
	}
	return nil
}
