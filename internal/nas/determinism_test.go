package nas

import (
	"testing"

	"ibflow/internal/chdev"
	"ibflow/internal/core"
	"ibflow/internal/sim"
)

// runResult captures everything observable about one simulation run; every
// field is comparable so two runs diff with ==.
type runResult struct {
	time   sim.Time
	events uint64
	total  chdev.Stats
	ranks  []chdev.Stats
}

// TestDeterministicReplay is the determinism-contract regression test the
// fclint analyzers exist to protect: running the same NAS kernel twice on
// fresh engines must produce bit-identical virtual times, event counts and
// per-rank statistics. Any wall-clock read, raw goroutine or
// map-order-dependent event emission that slips past the linters shows up
// here as a diff between the two runs.
func TestDeterministicReplay(t *testing.T) {
	run := func() *runResult {
		w := runApp(t, "CG", ClassS, 4, core.Dynamic(2, 64))
		res := &runResult{
			time:   w.Time(),
			events: w.Engine().EventsFired(),
			total:  w.Stats(),
		}
		for i := 0; i < w.Size(); i++ {
			res.ranks = append(res.ranks, w.RankStats(i))
		}
		w.Engine().Close()
		return res
	}

	a, b := run(), run()
	if a.time != b.time {
		t.Errorf("virtual completion time differs between runs: %v vs %v", a.time, b.time)
	}
	if a.events != b.events {
		t.Errorf("events fired differ between runs: %d vs %d", a.events, b.events)
	}
	if a.total != b.total {
		t.Errorf("aggregate stats differ between runs:\n  first:  %+v\n  second: %+v", a.total, b.total)
	}
	for i := range a.ranks {
		if a.ranks[i] != b.ranks[i] {
			t.Errorf("rank %d stats differ between runs:\n  first:  %+v\n  second: %+v",
				i, a.ranks[i], b.ranks[i])
		}
	}
}
