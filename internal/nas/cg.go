package nas

import (
	"fmt"
	"math"

	"ibflow/internal/coll"
	"ibflow/internal/enc"
	"ibflow/internal/mpi"
)

// cgParams holds the conjugate gradient problem scale.
type cgParams struct {
	n     int // grid side; the matrix is the shifted 2-D Laplacian on n*n
	outer int
	inner int
}

func cgParamsFor(class Class) cgParams {
	switch class {
	case ClassS:
		return cgParams{n: 32, outer: 2, inner: 8}
	case ClassW:
		return cgParams{n: 128, outer: 3, inner: 15}
	default: // ClassA (real class A: n=14000 random sparse, 15x25)
		return cgParams{n: 256, outer: 5, inner: 25}
	}
}

// RunCG is the conjugate gradient kernel: repeated CG solves against an
// SPD matrix (shifted 2-D Laplacian) row-partitioned across ranks. Each
// matvec needs one halo row from each neighbour (≈2 KB eager messages at
// class A) and each CG step performs two tiny latency-bound allreduce dot
// products — the symmetric, gentle pattern that needs only ~3 pre-posted
// buffers in the paper's Table 2.
func RunCG(c *mpi.Comm, class Class) error {
	p := cgParamsFor(class)
	nprocs, me := c.Size(), c.Rank()
	n := p.n
	if n%nprocs != 0 {
		return fmt.Errorf("CG: %d rows not divisible over %d ranks", n, nprocs)
	}
	rl := n / nprocs // local rows

	const shift = 0.5 // diagonal shift keeps the system well-conditioned
	up, down := me-1, me+1

	// Halo rows live at x[-1] and x[rl]; flatten with 2 extra rows.
	halo := func(x []float64) {
		rowBytes := make([]byte, 8*n)
		if me%2 == 0 {
			if down < nprocs {
				c.Send(down, 10, enc.F64Bytes(x[(rl)*n:(rl+1)*n]))
				c.Recv(down, 11, rowBytes)
				enc.GetF64(rowBytes, x[(rl+1)*n:(rl+2)*n])
			}
			if up >= 0 {
				c.Send(up, 12, enc.F64Bytes(x[n:2*n]))
				c.Recv(up, 13, rowBytes)
				enc.GetF64(rowBytes, x[0:n])
			}
		} else {
			if up >= 0 {
				c.Recv(up, 10, rowBytes)
				enc.GetF64(rowBytes, x[0:n])
				c.Send(up, 11, enc.F64Bytes(x[n:2*n]))
			}
			if down < nprocs {
				c.Recv(down, 12, rowBytes)
				enc.GetF64(rowBytes, x[(rl+1)*n:(rl+2)*n])
				c.Send(down, 13, enc.F64Bytes(x[rl*n:(rl+1)*n]))
			}
		}
	}

	// matvec computes y = A x for the local rows; x and y have halo
	// padding (row 0 and row rl+1 are ghosts).
	matvec := func(y, x []float64) {
		halo(x)
		for i := 1; i <= rl; i++ {
			gi := (me*rl + i - 1) // global row index of this grid row
			for j := 0; j < n; j++ {
				v := (4 + shift) * x[i*n+j]
				if j > 0 {
					v -= x[i*n+j-1]
				}
				if j < n-1 {
					v -= x[i*n+j+1]
				}
				if gi > 0 {
					v -= x[(i-1)*n+j]
				}
				if gi < n-1 {
					v -= x[(i+1)*n+j]
				}
				y[i*n+j] = v
			}
		}
		chargeFlops(c, 10*rl*n)
	}

	dot := func(a, b []float64) float64 {
		s := 0.0
		for i := n; i < (rl+1)*n; i++ {
			s += a[i] * b[i]
		}
		chargeFlops(c, 2*rl*n)
		buf := enc.F64Bytes([]float64{s})
		coll.Allreduce(c, buf, coll.SumF64)
		return enc.F64s(buf)[0]
	}

	size := (rl + 2) * n
	x := make([]float64, size)
	r := make([]float64, size)
	pv := make([]float64, size)
	ap := make([]float64, size)
	b := make([]float64, size)
	rng := newPrand(uint64(77 + me*13))
	for i := n; i < (rl+1)*n; i++ {
		b[i] = rng.float64n()
	}

	var finalRes, firstRes float64
	for out := 0; out < p.outer; out++ {
		// Restart from x = 0 each outer iteration, as NPB CG does.
		for i := range x {
			x[i] = 0
		}
		copy(r, b)
		copy(pv, r)
		rr := dot(r, r)
		res0 := math.Sqrt(rr)
		if out == 0 {
			firstRes = res0
		}
		for it := 0; it < p.inner; it++ {
			matvec(ap, pv)
			alpha := rr / dot(pv, ap)
			for i := n; i < (rl+1)*n; i++ {
				x[i] += alpha * pv[i]
				r[i] -= alpha * ap[i]
			}
			chargeFlops(c, 4*rl*n)
			rr2 := dot(r, r)
			beta := rr2 / rr
			rr = rr2
			for i := n; i < (rl+1)*n; i++ {
				pv[i] = r[i] + beta*pv[i]
			}
			chargeFlops(c, 2*rl*n)
		}
		finalRes = math.Sqrt(rr)
		if math.IsNaN(finalRes) || finalRes > res0 {
			return fmt.Errorf("CG: diverged: %g -> %g", res0, finalRes)
		}
	}
	if finalRes > firstRes*0.05 {
		return fmt.Errorf("CG: weak convergence: %g -> %g", firstRes, finalRes)
	}
	return nil
}
