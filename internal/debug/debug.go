//go:build ibdebug

// Package debug gates the simulator's runtime invariant checks behind the
// `ibdebug` build tag.
//
// Built normally, Enabled is a false constant and every assertion compiles
// to nothing, so the hot paths of core, chdev and ib pay zero cost. Built
// with `go test -tags ibdebug ./...`, the checks run after every credit
// mutation, progress pass and queue-pair operation: credit non-negativity
// and conservation (internal/core), backlog-queue/counter agreement
// (internal/chdev) and send-queue FIFO ordering (internal/ib).
//
// The per-run Debug switch (chdev.Config.Debug) enables the same chdev
// checks dynamically without the tag; the tag additionally arms the
// fine-grained per-mutation checks that would be too intrusive to toggle
// at run time.
package debug

import "fmt"

// Enabled reports whether the build carries the ibdebug tag.
const Enabled = true

// Assert panics with a formatted message when cond is false. Under the
// default build it is an empty function; callers may rely on the compiler
// discarding it and its arguments.
func Assert(cond bool, format string, args ...any) {
	if !cond {
		panic("ibdebug: " + fmt.Sprintf(format, args...))
	}
}
