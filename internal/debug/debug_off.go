//go:build !ibdebug

package debug

// Enabled reports whether the build carries the ibdebug tag.
const Enabled = false

// Assert is a no-op without the ibdebug build tag.
func Assert(cond bool, format string, args ...any) {}
