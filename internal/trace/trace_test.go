package trace

import (
	"strings"
	"testing"

	"ibflow/internal/sim"
)

func TestRingRetainsMostRecent(t *testing.T) {
	b := NewBuffer(3)
	for i := 0; i < 5; i++ {
		b.Add(Event{T: sim.Time(i), Rank: i, Kind: SendEager})
	}
	if b.Total() != 5 {
		t.Errorf("Total = %d", b.Total())
	}
	evs := b.Events()
	if len(evs) != 3 {
		t.Fatalf("retained %d", len(evs))
	}
	for i, e := range evs {
		if e.Rank != i+2 {
			t.Errorf("slot %d rank %d, want %d (oldest-first order)", i, e.Rank, i+2)
		}
	}
}

func TestEventsBeforeWrap(t *testing.T) {
	b := NewBuffer(10)
	b.Add(Event{Rank: 1, Kind: Demoted})
	b.Add(Event{Rank: 2, Kind: Grew})
	evs := b.Events()
	if len(evs) != 2 || evs[0].Rank != 1 || evs[1].Rank != 2 {
		t.Errorf("events = %v", evs)
	}
}

func TestDumpAndSummary(t *testing.T) {
	b := NewBuffer(16)
	b.Add(Event{T: 1000, Rank: 0, Peer: 1, Kind: SendEager, Arg: 52})
	b.Add(Event{T: 2000, Rank: 1, Peer: 0, Kind: Recv, Arg: 1})
	b.Add(Event{T: 3000, Rank: 0, Peer: 1, Kind: SendEager, Arg: 52})
	var sb strings.Builder
	b.Dump(&sb, 2)
	out := sb.String()
	if strings.Count(out, "\n") != 2 {
		t.Errorf("Dump(2) lines:\n%s", out)
	}
	if !strings.Contains(out, "send-eager") || !strings.Contains(out, "recv") {
		t.Errorf("missing kinds in:\n%s", out)
	}
	sum := b.Summary()
	found := false
	for _, s := range sum {
		if s.Kind == SendEager && s.Count == 2 {
			found = true
		}
	}
	if !found {
		t.Errorf("summary = %v", sum)
	}
}

func TestKindStrings(t *testing.T) {
	for k := SendEager; k <= Reissued; k++ {
		if strings.HasPrefix(k.String(), "Kind(") {
			t.Errorf("kind %d has no name", k)
		}
	}
	if !strings.HasPrefix(Kind(200).String(), "Kind(") {
		t.Error("unknown kind should fall back")
	}
}

// Events are retained in insertion order, which on the single-threaded
// simulation timeline is non-decreasing virtual time. The buffer must not
// reorder them even across a ring wrap.
func TestEventOrderingPreserved(t *testing.T) {
	b := NewBuffer(4)
	times := []sim.Time{100, 100, 250, 250, 300, 900}
	for i, ts := range times {
		b.Add(Event{T: ts, Rank: i, Kind: SendECM})
	}
	evs := b.Events()
	if len(evs) != 4 {
		t.Fatalf("retained %d events, want 4", len(evs))
	}
	for i := 1; i < len(evs); i++ {
		if evs[i].T < evs[i-1].T {
			t.Errorf("events out of order: %v before %v", evs[i-1], evs[i])
		}
		if evs[i].Rank != evs[i-1].Rank+1 {
			t.Errorf("insertion order lost: rank %d follows %d", evs[i].Rank, evs[i-1].Rank)
		}
	}
	if evs[0].Rank != 2 {
		t.Errorf("oldest retained rank = %d, want 2", evs[0].Rank)
	}
}

// Recording must stay allocation-free after the ring is built, so tracing
// can remain enabled during experiments without perturbing benchmarks.
func TestAddDoesNotAllocate(t *testing.T) {
	b := NewBuffer(64)
	e := Event{T: 1000, Rank: 1, Peer: 2, Kind: SendEager, Arg: 52}
	allocs := testing.AllocsPerRun(1000, func() {
		b.Add(e)
	})
	if allocs != 0 {
		t.Errorf("Add allocates %v times per call, want 0", allocs)
	}
}

func TestNewBufferValidates(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic on zero capacity")
		}
	}()
	NewBuffer(0)
}
