// Package trace records per-rank protocol events on the virtual timeline:
// what the channel device sent, what starved, when the dynamic scheme
// grew, and where the transport took RNR NAKs. A Buffer is attached
// through the device/fabric configuration; recording is allocation-free
// after warm-up (a fixed ring) so it can stay on during experiments.
package trace

import (
	"fmt"
	"io"
	"sort"

	"ibflow/internal/sim"
)

// Kind classifies a traced event.
type Kind uint8

// Traced event kinds.
const (
	SendEager Kind = iota + 1
	SendRTS
	SendCTS
	SendFin
	SendECM
	SendRingExt
	SendRDMAData
	Recv
	Demoted
	Backlogged
	Drained
	Grew
	Shrank
	RNRNak
	Retransmit
	FaultDelay
	LinkOutage
	ECMDropped
	ECMDuplicated
	RetryExhausted
	Reissued
	PoolLimit
	PoolGrew
	// Ring-channel kinds (core.KindRDMA) — appended so the values of the
	// kinds above stay stable for semantic golden digests.
	SendRingSync
	SendRDMARead
)

var kindNames = map[Kind]string{
	SendEager:      "send-eager",
	SendRTS:        "send-rts",
	SendCTS:        "send-cts",
	SendFin:        "send-fin",
	SendECM:        "send-ecm",
	SendRingExt:    "send-ringext",
	SendRDMAData:   "rdma-data",
	Recv:           "recv",
	Demoted:        "demoted",
	Backlogged:     "backlogged",
	Drained:        "drained",
	Grew:           "grew",
	Shrank:         "shrank",
	RNRNak:         "rnr-nak",
	Retransmit:     "retransmit",
	FaultDelay:     "fault-delay",
	LinkOutage:     "link-outage",
	ECMDropped:     "ecm-dropped",
	ECMDuplicated:  "ecm-duplicated",
	RetryExhausted: "retry-exhausted",
	Reissued:       "reissued",
	PoolLimit:      "pool-limit",
	PoolGrew:       "pool-grew",
	SendRingSync:   "send-ringsync",
	SendRDMARead:   "rdma-read",
}

func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// Event is one timeline record.
type Event struct {
	T    sim.Time
	Rank int
	Peer int
	Kind Kind
	Arg  int64 // kind-specific: bytes, credits, new pre-post count, ...
}

func (e Event) String() string {
	return fmt.Sprintf("%-12v rank %d -> %d  %-12v %d", e.T, e.Rank, e.Peer, e.Kind, e.Arg)
}

// Buffer is a fixed-capacity ring of events. The zero value is unusable;
// create with NewBuffer. It is safe for use from the (single-threaded)
// simulation only.
type Buffer struct {
	ring    []Event
	next    int
	total   uint64
	wrapped bool
}

// NewBuffer creates a ring holding the most recent cap events.
func NewBuffer(capacity int) *Buffer {
	if capacity <= 0 {
		panic("trace: non-positive capacity")
	}
	return &Buffer{ring: make([]Event, capacity)}
}

// Add records an event.
func (b *Buffer) Add(e Event) {
	b.ring[b.next] = e
	b.next++
	b.total++
	if b.next == len(b.ring) {
		b.next = 0
		b.wrapped = true
	}
}

// Total reports how many events were ever recorded.
func (b *Buffer) Total() uint64 { return b.total }

// Events returns the retained events, oldest first.
func (b *Buffer) Events() []Event {
	if !b.wrapped {
		out := make([]Event, b.next)
		copy(out, b.ring[:b.next])
		return out
	}
	out := make([]Event, 0, len(b.ring))
	out = append(out, b.ring[b.next:]...)
	out = append(out, b.ring[:b.next]...)
	return out
}

// Dump writes the last n retained events (all if n <= 0) to w.
func (b *Buffer) Dump(w io.Writer, n int) {
	evs := b.Events()
	if n > 0 && len(evs) > n {
		evs = evs[len(evs)-n:]
	}
	for _, e := range evs {
		fmt.Fprintln(w, e)
	}
}

// Summary counts retained events per kind, sorted by kind name.
func (b *Buffer) Summary() []struct {
	Kind  Kind
	Count int
} {
	counts := map[Kind]int{}
	for _, e := range b.Events() {
		counts[e.Kind]++
	}
	out := make([]struct {
		Kind  Kind
		Count int
	}, 0, len(counts))
	for k, c := range counts {
		out = append(out, struct {
			Kind  Kind
			Count int
		}{k, c})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Kind.String() < out[j].Kind.String() })
	return out
}
